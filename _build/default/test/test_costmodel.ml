(* Tests for the cost models of paper Section 4: the Amdahl processing
   model (eq. 1, Lemma 1), the 1D/2D transfer models (eqs. 2-3,
   Lemma 2), node/edge weights, and the training-sets fitting. *)

module G = Mdg.Graph
module P = Costmodel.Params
module Proc = Costmodel.Processing
module T = Costmodel.Transfer
module W = Costmodel.Weights
module F = Costmodel.Fit

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let proc_ex : P.processing = { alpha = 0.2; tau = 10.0 }

(* ------------------------------------------------------------------ *)
(* Params                                                              *)
(* ------------------------------------------------------------------ *)

let test_params_table () =
  let t = P.cm5 () in
  let add = P.processing t (G.Matrix_add 64) in
  check_close "table 1 add alpha" 0.067 add.alpha;
  check_close "table 1 add tau" 3.73e-3 add.tau;
  let mul = P.processing t (G.Matrix_multiply 64) in
  check_close "table 1 mul alpha" 0.121 mul.alpha;
  check_close "table 1 mul tau" 298.47e-3 mul.tau;
  Alcotest.(check int) "known kernels" 2 (List.length (P.known_kernels t))

let test_params_synthetic_dummy () =
  let t = P.make ~transfer:P.cm5_transfer in
  let s = P.processing t (G.Synthetic { alpha = 0.3; tau = 7.0 }) in
  check_close "synthetic alpha" 0.3 s.alpha;
  let d = P.processing t G.Dummy in
  check_close "dummy tau" 0.0 d.tau;
  Alcotest.check_raises "missing kernel" Not_found (fun () ->
      ignore (P.processing t (G.Matrix_add 99)))

let test_params_validation () =
  let t = P.make ~transfer:P.cm5_transfer in
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Params.set_processing: alpha outside [0,1]") (fun () ->
      P.set_processing t (G.Matrix_add 8) { alpha = 2.0; tau = 1.0 });
  Alcotest.check_raises "synthetic rejected"
    (Invalid_argument "Params.set_processing: synthetic/dummy kernels are implicit")
    (fun () ->
      P.set_processing t (G.Synthetic { alpha = 0.1; tau = 1.0 })
        { alpha = 0.1; tau = 1.0 })

(* ------------------------------------------------------------------ *)
(* Processing (eq. 1)                                                  *)
(* ------------------------------------------------------------------ *)

let test_processing_amdahl () =
  check_close "serial" 10.0 (Proc.cost proc_ex 1.0);
  check_close "p=2" ((0.2 +. 0.4) *. 10.0) (Proc.cost proc_ex 2.0);
  check_close "p=4" ((0.2 +. 0.2) *. 10.0) (Proc.cost_int proc_ex 4);
  check_close "limit" 2.0 (Proc.limit proc_ex);
  check_close "speedup at 4" (10.0 /. 4.0) (Proc.best_speedup proc_ex ~procs:4);
  Alcotest.check_raises "p<1" (Invalid_argument "Processing.cost: p < 1")
    (fun () -> ignore (Proc.cost proc_ex 0.5))

let test_processing_monotone_decreasing () =
  let prev = ref infinity in
  List.iter
    (fun p ->
      let c = Proc.cost_int proc_ex p in
      Alcotest.(check bool) "decreasing" true (c <= !prev);
      prev := c)
    [ 1; 2; 4; 8; 16; 32; 64 ]

(* Lemma 1: the posynomial form evaluates to the same values. *)
let test_processing_posynomial_consistent () =
  let posy = Proc.posynomial proc_ex ~var:0 in
  List.iter
    (fun p ->
      check_close
        (Printf.sprintf "p=%g" p)
        (Proc.cost proc_ex p)
        (Convex.Posynomial.eval posy [| p |]))
    [ 1.0; 2.0; 3.7; 16.0 ];
  (* Condition 2: t^C * p is posynomial and equals cost*p. *)
  let posy_p = Proc.posynomial_times_p proc_ex ~var:0 in
  check_close "t*p" (Proc.cost proc_ex 8.0 *. 8.0)
    (Convex.Posynomial.eval posy_p [| 8.0 |])

let test_processing_expr_consistent () =
  let e = Proc.expr proc_ex ~var:0 in
  check_close "expr vs cost" (Proc.cost proc_ex 5.0) (Convex.Expr.eval_p e [| 5.0 |])

let test_processing_zero_cost_kernels () =
  (* Dummy kernels have empty posynomials and zero exprs. *)
  let dummy : P.processing = { alpha = 0.0; tau = 0.0 } in
  check_close "zero cost" 0.0 (Proc.cost dummy 4.0);
  check_close "zero expr" 0.0 (Convex.Expr.eval_p (Proc.expr dummy ~var:0) [| 4.0 |])

(* ------------------------------------------------------------------ *)
(* Transfer (eqs. 2-3)                                                 *)
(* ------------------------------------------------------------------ *)

let tr = P.cm5_transfer

let test_transfer_1d_equal_procs () =
  (* pi = pj = 4, L bytes: max/pi = 1 message per proc. *)
  let l = 32768.0 in
  let c = T.components tr ~kind:G.Oned ~bytes:l ~p_send:4.0 ~p_recv:4.0 in
  check_close "send" (tr.t_ss +. (l /. 4.0 *. tr.t_ps)) c.send;
  check_close "recv" (tr.t_sr +. (l /. 4.0 *. tr.t_pr)) c.receive;
  check_close "network (t_n=0)" 0.0 c.network

let test_transfer_1d_asymmetric () =
  (* pi = 2, pj = 8: each sender issues 4 messages. *)
  let l = 1024.0 in
  let c = T.components tr ~kind:G.Oned ~bytes:l ~p_send:2.0 ~p_recv:8.0 in
  check_close "send startups" ((8.0 /. 2.0 *. tr.t_ss) +. (l /. 2.0 *. tr.t_ps)) c.send;
  check_close "recv startups" ((8.0 /. 8.0 *. tr.t_sr) +. (l /. 8.0 *. tr.t_pr)) c.receive

let test_transfer_2d () =
  let l = 4096.0 in
  let c = T.components tr ~kind:G.Twod ~bytes:l ~p_send:2.0 ~p_recv:8.0 in
  check_close "send all-to-all" ((8.0 *. tr.t_ss) +. (l /. 2.0 *. tr.t_ps)) c.send;
  check_close "recv all-to-all" ((2.0 *. tr.t_sr) +. (l /. 8.0 *. tr.t_pr)) c.receive

let test_transfer_zero_bytes_free () =
  let c = T.components tr ~kind:G.Twod ~bytes:0.0 ~p_send:4.0 ~p_recv:4.0 in
  check_close "total" 0.0 (T.total c)

let test_transfer_2d_costlier_than_1d () =
  (* With more than one processor on each side, the 2D pattern pays
     more startups than 1D for the same array. *)
  List.iter
    (fun (pi, pj) ->
      let l = 65536.0 in
      let c1 = T.total (T.components tr ~kind:G.Oned ~bytes:l ~p_send:pi ~p_recv:pj) in
      let c2 = T.total (T.components tr ~kind:G.Twod ~bytes:l ~p_send:pi ~p_recv:pj) in
      Alcotest.(check bool) "2D >= 1D" true (c2 >= c1 -. 1e-12))
    [ (2.0, 2.0); (4.0, 8.0); (16.0, 4.0) ]

let test_transfer_exprs_match_components () =
  (* The convex-expression forms agree with the numeric components
     (t_n = 0 so the 1D network surrogate is inactive). *)
  List.iter
    (fun (kind, pi, pj) ->
      let l = 8192.0 in
      let c = T.components tr ~kind ~bytes:l ~p_send:pi ~p_recv:pj in
      let p = [| pi; pj |] in
      check_close "send expr" c.send
        (Convex.Expr.eval_p (T.send_expr tr ~kind ~bytes:l ~vi:0 ~vj:1) p);
      check_close "recv expr" c.receive
        (Convex.Expr.eval_p (T.receive_expr tr ~kind ~bytes:l ~vi:0 ~vj:1) p);
      check_close "net expr" c.network
        (Convex.Expr.eval_p (T.network_expr tr ~kind ~bytes:l ~vi:0 ~vj:1) p);
      (* Condition 2 forms. *)
      check_close "send*p expr" (c.send *. pi)
        (Convex.Expr.eval_p (T.send_times_p_expr tr ~kind ~bytes:l ~vi:0 ~vj:1) p);
      check_close "recv*p expr" (c.receive *. pj)
        (Convex.Expr.eval_p (T.receive_times_p_expr tr ~kind ~bytes:l ~vi:0 ~vj:1) p))
    [
      (G.Oned, 2.0, 8.0);
      (G.Oned, 8.0, 2.0);
      (G.Oned, 4.0, 4.0);
      (G.Twod, 2.0, 8.0);
      (G.Twod, 16.0, 2.0);
    ]

(* Lemma 2 for the 2D case via explicit posynomials. *)
let test_transfer_2d_posynomials () =
  let l = 2048.0 in
  let c = T.components tr ~kind:G.Twod ~bytes:l ~p_send:4.0 ~p_recv:2.0 in
  check_close "posy send" c.send
    (Convex.Posynomial.eval (T.send_posynomial_2d tr ~bytes:l ~vi:0 ~vj:1) [| 4.0; 2.0 |]);
  check_close "posy recv" c.receive
    (Convex.Posynomial.eval
       (T.receive_posynomial_2d tr ~bytes:l ~vi:0 ~vj:1)
       [| 4.0; 2.0 |])

let test_transfer_validation () =
  Alcotest.check_raises "p<1"
    (Invalid_argument "Transfer: processor counts must be >= 1") (fun () ->
      ignore (T.components tr ~kind:G.Oned ~bytes:1.0 ~p_send:0.5 ~p_recv:1.0))

(* ------------------------------------------------------------------ *)
(* Weights                                                             *)
(* ------------------------------------------------------------------ *)

let weighted_graph () =
  let b = G.create_builder () in
  let n0 = G.add_node b ~label:"src" ~kernel:(Synthetic { alpha = 0.1; tau = 2.0 }) in
  let n1 = G.add_node b ~label:"dst" ~kernel:(Synthetic { alpha = 0.2; tau = 4.0 }) in
  G.add_edge b ~src:n0 ~dst:n1 ~bytes:32768.0 ~kind:Oned;
  G.build b

let test_node_weight_composition () =
  let params = P.make ~transfer:tr in
  let g = weighted_graph () in
  let alloc _ = 4.0 in
  let c = T.components tr ~kind:G.Oned ~bytes:32768.0 ~p_send:4.0 ~p_recv:4.0 in
  let t0 = Proc.cost { alpha = 0.1; tau = 2.0 } 4.0 in
  let t1 = Proc.cost { alpha = 0.2; tau = 4.0 } 4.0 in
  check_close "src weight = proc + send" (t0 +. c.send)
    (W.node_weight params g ~alloc 0);
  check_close "dst weight = recv + proc" (t1 +. c.receive)
    (W.node_weight params g ~alloc 1);
  check_close "edge weight" c.network (W.edge_weight params ~alloc (List.hd (G.edges g)));
  check_close "processing only" t0 (W.processing_only params g ~alloc 0)

let test_average_and_cp () =
  let params = P.make ~transfer:tr in
  let g = weighted_graph () in
  let alloc _ = 2.0 in
  let w0 = W.node_weight params g ~alloc 0 in
  let w1 = W.node_weight params g ~alloc 1 in
  check_close "average" ((w0 *. 2.0) +. (w1 *. 2.0)) (4.0 *. W.average_finish_time params g ~alloc ~procs:4);
  check_close "critical path" (w0 +. w1) (W.critical_path_time params g ~alloc);
  check_close "lower bound is max" (Float.max ((w0 +. w1) /. 2.0) (w0 +. w1))
    (W.lower_bound params g ~alloc ~procs:4);
  check_close "serial time" 6.0 (W.serial_time params g)

(* ------------------------------------------------------------------ *)
(* Fit (training sets)                                                 *)
(* ------------------------------------------------------------------ *)

let test_fit_processing_exact () =
  (* Samples generated by the model itself are recovered exactly. *)
  let truth : P.processing = { alpha = 0.15; tau = 2.5 } in
  let samples =
    List.map (fun p -> (p, Proc.cost_int truth p)) [ 1; 2; 4; 8; 16; 32 ]
  in
  let fitted, q = F.fit_processing samples in
  check_close ~eps:1e-9 "alpha" truth.alpha fitted.alpha;
  check_close ~eps:1e-9 "tau" truth.tau fitted.tau;
  check_close ~eps:1e-9 "r2" 1.0 q.r_squared

let test_fit_processing_needs_two_points () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Fit.fit_processing: need at least two distinct processor counts")
    (fun () -> ignore (F.fit_processing [ (4, 1.0); (4, 1.1) ]))

let test_fit_transfer_exact () =
  (* Samples generated by the model recover Table 2 exactly. *)
  let mk kind p_send p_recv bytes =
    {
      F.kind;
      p_send;
      p_recv;
      bytes;
      measured =
        T.components tr ~kind ~bytes ~p_send:(float_of_int p_send)
          ~p_recv:(float_of_int p_recv);
    }
  in
  let samples =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun (pi, pj) ->
            List.map (fun l -> mk kind pi pj l) [ 1024.0; 65536.0; 524288.0 ])
          [ (1, 4); (4, 1); (2, 2); (8, 16); (16, 8) ])
      [ G.Oned; G.Twod ]
  in
  let f = F.fit_transfer samples in
  check_close ~eps:1e-12 "t_ss" tr.t_ss f.params.t_ss;
  check_close ~eps:1e-12 "t_ps" tr.t_ps f.params.t_ps;
  check_close ~eps:1e-12 "t_sr" tr.t_sr f.params.t_sr;
  check_close ~eps:1e-12 "t_pr" tr.t_pr f.params.t_pr;
  check_close ~eps:1e-12 "t_n" tr.t_n f.params.t_n;
  check_close ~eps:1e-9 "send r2" 1.0 f.send_quality.r_squared

(* Against the ideal machine (no perturbations), calibration recovers
   the exact model end to end. *)
let test_calibrate_ideal_machine_exact () =
  let gt = Machine.Ground_truth.ideal () in
  let params, qualities, tf =
    Machine.Measure.calibrate gt ~procs:[ 1; 2; 4; 8; 16 ] [ G.Matrix_add 64 ]
  in
  check_close ~eps:1e-9 "t_ss exact" tr.t_ss tf.params.t_ss;
  let add = P.processing params (G.Matrix_add 64) in
  check_close ~eps:1e-6 "add alpha" 0.067 add.alpha;
  List.iter
    (fun (_, (q : F.quality)) -> check_close ~eps:1e-9 "r2 = 1" 1.0 q.r_squared)
    qualities

(* Property: fitting always reproduces its own model class. *)
let prop_fit_processing_roundtrip =
  QCheck.Test.make ~name:"fit_processing recovers arbitrary Amdahl params"
    ~count:100
    QCheck.(pair (float_range 0.0 0.9) (float_range 0.001 100.0))
    (fun (alpha, tau) ->
      let truth : P.processing = { alpha; tau } in
      let samples =
        List.map (fun p -> (p, Proc.cost_int truth p)) [ 1; 2; 3; 5; 8; 13; 32 ]
      in
      let fitted, _ = F.fit_processing samples in
      Float.abs (fitted.alpha -. alpha) < 1e-6
      && Float.abs (fitted.tau -. tau) < 1e-6 *. tau)

let suite =
  [
    Alcotest.test_case "params: CM-5 Table 1/2 constants" `Quick test_params_table;
    Alcotest.test_case "params: synthetic/dummy/missing" `Quick
      test_params_synthetic_dummy;
    Alcotest.test_case "params: validation" `Quick test_params_validation;
    Alcotest.test_case "processing: Amdahl values" `Quick test_processing_amdahl;
    Alcotest.test_case "processing: monotone in p" `Quick
      test_processing_monotone_decreasing;
    Alcotest.test_case "processing: posynomial consistency (Lemma 1)" `Quick
      test_processing_posynomial_consistent;
    Alcotest.test_case "processing: expr consistency" `Quick
      test_processing_expr_consistent;
    Alcotest.test_case "processing: zero-cost kernels" `Quick
      test_processing_zero_cost_kernels;
    Alcotest.test_case "transfer: 1D equal procs" `Quick test_transfer_1d_equal_procs;
    Alcotest.test_case "transfer: 1D asymmetric" `Quick test_transfer_1d_asymmetric;
    Alcotest.test_case "transfer: 2D all-to-all" `Quick test_transfer_2d;
    Alcotest.test_case "transfer: zero bytes free" `Quick
      test_transfer_zero_bytes_free;
    Alcotest.test_case "transfer: 2D costlier than 1D" `Quick
      test_transfer_2d_costlier_than_1d;
    Alcotest.test_case "transfer: exprs match components (Lemma 2)" `Quick
      test_transfer_exprs_match_components;
    Alcotest.test_case "transfer: 2D posynomials" `Quick test_transfer_2d_posynomials;
    Alcotest.test_case "transfer: validation" `Quick test_transfer_validation;
    Alcotest.test_case "weights: node composition" `Quick
      test_node_weight_composition;
    Alcotest.test_case "weights: average and critical path" `Quick
      test_average_and_cp;
    Alcotest.test_case "fit: processing exact recovery" `Quick
      test_fit_processing_exact;
    Alcotest.test_case "fit: processing needs 2 points" `Quick
      test_fit_processing_needs_two_points;
    Alcotest.test_case "fit: transfer exact recovery" `Quick test_fit_transfer_exact;
    Alcotest.test_case "fit: ideal-machine calibration exact" `Quick
      test_calibrate_ideal_machine_exact;
    QCheck_alcotest.to_alcotest prop_fit_processing_roundtrip;
  ]

(* Tests for the interconnect topology models and the software
   collectives. *)

module M = Machine
module GT = Machine.Ground_truth

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let gt = GT.ideal ()

(* ------------------------------------------------------------------ *)
(* Topology                                                            *)
(* ------------------------------------------------------------------ *)

let test_uniform () =
  let t = M.Topology.uniform ~latency:1e-6 () in
  Alcotest.(check int) "hops 0" 0 (M.Topology.hops t ~src:3 ~dst:9);
  check_close "flat latency" 1e-6
    (M.Topology.message_delay t ~src:3 ~dst:9 ~bytes:1e6 ~now:0.0);
  check_close "self free" 0.0
    (M.Topology.message_delay t ~src:3 ~dst:3 ~bytes:1e6 ~now:0.0)

let test_fat_tree_hops () =
  let t = M.Topology.fat_tree ~arity:4 ~procs:64 () in
  (* Same quad: LCA at level 1 -> 2 hops. *)
  Alcotest.(check int) "same quad" 2 (M.Topology.hops t ~src:0 ~dst:3);
  (* Adjacent quads: level 2 -> 4 hops. *)
  Alcotest.(check int) "same 16-block" 4 (M.Topology.hops t ~src:0 ~dst:5);
  (* Opposite sides of the machine: level 3 -> 6 hops. *)
  Alcotest.(check int) "across the root" 6 (M.Topology.hops t ~src:0 ~dst:63);
  Alcotest.(check int) "self" 0 (M.Topology.hops t ~src:7 ~dst:7)

let test_fat_tree_latency_scales_with_hops () =
  let t = M.Topology.fat_tree ~arity:4 ~hop_latency:1e-6 ~procs:64 () in
  let near = M.Topology.message_delay t ~src:0 ~dst:1 ~bytes:0.0 ~now:0.0 in
  check_close "2 hops" 2e-6 near

let test_fat_tree_root_contention () =
  let t =
    M.Topology.fat_tree ~arity:4 ~hop_latency:0.0 ~root_bytes_per_sec:1e6
      ~procs:16 ()
  in
  (* 0 -> 15 crosses the root (2 levels, LCA at top).  Two simultaneous
     1e6-byte messages serialise: the second waits a full second. *)
  let d1 = M.Topology.message_delay t ~src:0 ~dst:15 ~bytes:1e6 ~now:0.0 in
  let d2 = M.Topology.message_delay t ~src:1 ~dst:14 ~bytes:1e6 ~now:0.0 in
  check_close "first transits in 1s" 1.0 d1;
  check_close "second queues behind it" 2.0 d2;
  (* Intra-quad traffic is unaffected. *)
  check_close "local traffic free" 0.0
    (M.Topology.message_delay t ~src:0 ~dst:1 ~bytes:1e6 ~now:0.0);
  M.Topology.reset t;
  check_close "reset clears the queue" 1.0
    (M.Topology.message_delay t ~src:0 ~dst:15 ~bytes:1e6 ~now:0.0)

let test_mesh_hops () =
  let t = M.Topology.mesh2d ~procs:16 () in
  (* Width 4: proc 0 at (0,0), proc 5 at (1,1), proc 15 at (3,3). *)
  Alcotest.(check int) "diag neighbour" 2 (M.Topology.hops t ~src:0 ~dst:5);
  Alcotest.(check int) "corner to corner" 6 (M.Topology.hops t ~src:0 ~dst:15);
  Alcotest.(check int) "row neighbour" 1 (M.Topology.hops t ~src:0 ~dst:1)

let test_sim_with_topology_slower () =
  (* A root-crossing transfer takes longer on a contended fat tree than
     on the uniform network. *)
  let prog =
    M.Program.make ~procs:16
      [|
        [ M.Program.Send { edge = 0; dst_proc = 15; bytes = 100_000.0 } ];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [];
        [ M.Program.Recv { edge = 0; src_proc = 0; bytes = 100_000.0 } ];
      |]
  in
  let flat = (M.Sim.run gt prog).finish_time in
  let topo =
    M.Topology.fat_tree ~arity:4 ~hop_latency:1e-6 ~root_bytes_per_sec:1e7
      ~procs:16 ()
  in
  let treed = (M.Sim.run ~topology:topo gt prog).finish_time in
  Alcotest.(check bool) "fat tree slower" true (treed > flat);
  (* 100 kB over 10 MB/s root = 10 ms extra plus hop latency. *)
  check_close ~eps:1e-6 "by the transit time" (flat +. 0.01 +. 4e-6) treed

let test_topology_validation () =
  Alcotest.check_raises "arity" (Invalid_argument "Topology.fat_tree: arity < 2")
    (fun () -> ignore (M.Topology.fat_tree ~arity:1 ~procs:4 ()));
  Alcotest.check_raises "latency"
    (Invalid_argument "Topology.uniform: negative latency") (fun () ->
      ignore (M.Topology.uniform ~latency:(-1.0) ()))

(* ------------------------------------------------------------------ *)
(* Collectives                                                         *)
(* ------------------------------------------------------------------ *)

let run_fragment ~procs fragment =
  let code = Array.make procs [] in
  List.iter (fun (p, ops) -> code.(p) <- code.(p) @ ops) fragment;
  M.Sim.run gt (M.Program.make ~procs code)

let test_broadcast_reaches_everyone () =
  List.iter
    (fun m ->
      let procs = Array.init m Fun.id in
      let frag =
        M.Collectives.broadcast ~edge_base:0 ~procs ~root_index:0 ~bytes:1024.0
      in
      let r = run_fragment ~procs:m frag in
      (* m-1 deliveries: everyone but the root receives exactly once. *)
      Alcotest.(check int)
        (Printf.sprintf "m=%d messages" m)
        (m - 1) r.messages_delivered)
    [ 1; 2; 3; 4; 7; 8; 16 ]

let test_broadcast_matches_model () =
  List.iter
    (fun m ->
      let procs = Array.init m Fun.id in
      let frag =
        M.Collectives.broadcast ~edge_base:0 ~procs ~root_index:0 ~bytes:32768.0
      in
      let r = run_fragment ~procs:m frag in
      let model = M.Collectives.model_broadcast_time gt ~procs:m ~bytes:32768.0 in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d sim %.4f vs model %.4f" m r.finish_time model)
        true
        (Float.abs (r.finish_time -. model) < 0.25 *. model))
    [ 2; 4; 8; 16; 32 ]

let test_broadcast_nonzero_root () =
  let procs = [| 3; 5; 9; 11 |] in
  let frag =
    M.Collectives.broadcast ~edge_base:100 ~procs ~root_index:2 ~bytes:64.0
  in
  let r = run_fragment ~procs:12 frag in
  Alcotest.(check int) "3 deliveries" 3 r.messages_delivered

let test_reduce_combines () =
  let m = 8 in
  let procs = Array.init m Fun.id in
  let frag =
    M.Collectives.reduce ~edge_base:0 ~procs ~root_index:0 ~bytes:1024.0
      ~combine_seconds:0.001
  in
  let r = run_fragment ~procs:m frag in
  Alcotest.(check int) "m-1 messages" (m - 1) r.messages_delivered;
  (* m-1 combines of 1 ms each, 3 on the root's critical path. *)
  let combine_busy =
    List.fold_left
      (fun acc (s : M.Sim.segment) ->
        match s.activity with
        | M.Sim.Busy_compute _ -> acc +. (s.finish -. s.start)
        | _ -> acc)
      0.0 r.segments
  in
  check_close ~eps:1e-9 "total combine time" (float_of_int (m - 1) *. 0.001)
    combine_busy

let test_allgather_all_to_all () =
  List.iter
    (fun m ->
      let procs = Array.init m Fun.id in
      let frag =
        M.Collectives.allgather ~edge_base:0 ~procs ~bytes_per_proc:512.0
      in
      let r = run_fragment ~procs:m frag in
      (* Ring: m messages per step, m-1 steps. *)
      Alcotest.(check int)
        (Printf.sprintf "m=%d messages" m)
        (m * (m - 1))
        r.messages_delivered;
      let model = M.Collectives.model_allgather_time gt ~procs:m ~bytes_per_proc:512.0 in
      Alcotest.(check bool)
        (Printf.sprintf "m=%d time vs model" m)
        true
        (Float.abs (r.finish_time -. model) < 0.25 *. model))
    [ 2; 3; 4; 8 ]

let test_collectives_single_proc_trivial () =
  let procs = [| 0 |] in
  Alcotest.(check int) "broadcast no ops" 0
    (List.length (List.concat_map snd (M.Collectives.broadcast ~edge_base:0 ~procs ~root_index:0 ~bytes:8.0)));
  Alcotest.(check int) "allgather no ops" 0
    (List.length (List.concat_map snd (M.Collectives.allgather ~edge_base:0 ~procs ~bytes_per_proc:8.0)))

let test_tags_used () =
  Alcotest.(check int) "broadcast" 16 (M.Collectives.tags_used `Broadcast ~procs:16);
  Alcotest.(check int) "allgather" 240 (M.Collectives.tags_used `Allgather ~procs:16)

let prop_collectives_never_deadlock =
  QCheck.Test.make ~name:"collectives complete for any size/root" ~count:50
    QCheck.(pair (int_range 1 24) (int_range 0 23))
    (fun (m, root) ->
      let root = root mod m in
      let procs = Array.init m Fun.id in
      let b =
        run_fragment ~procs:m
          (M.Collectives.broadcast ~edge_base:0 ~procs ~root_index:root ~bytes:64.0)
      in
      let r =
        run_fragment ~procs:m
          (M.Collectives.reduce ~edge_base:0 ~procs ~root_index:root ~bytes:64.0
             ~combine_seconds:1e-5)
      in
      let a =
        run_fragment ~procs:m
          (M.Collectives.allgather ~edge_base:0 ~procs ~bytes_per_proc:64.0)
      in
      b.messages_delivered = m - 1
      && r.messages_delivered = m - 1
      && a.messages_delivered = m * (m - 1))

let suite =
  [
    Alcotest.test_case "topology: uniform" `Quick test_uniform;
    Alcotest.test_case "topology: fat-tree hops" `Quick test_fat_tree_hops;
    Alcotest.test_case "topology: fat-tree latency" `Quick
      test_fat_tree_latency_scales_with_hops;
    Alcotest.test_case "topology: root contention" `Quick
      test_fat_tree_root_contention;
    Alcotest.test_case "topology: mesh hops" `Quick test_mesh_hops;
    Alcotest.test_case "topology: sim integration" `Quick
      test_sim_with_topology_slower;
    Alcotest.test_case "topology: validation" `Quick test_topology_validation;
    Alcotest.test_case "collectives: broadcast coverage" `Quick
      test_broadcast_reaches_everyone;
    Alcotest.test_case "collectives: broadcast vs model" `Quick
      test_broadcast_matches_model;
    Alcotest.test_case "collectives: non-zero root" `Quick
      test_broadcast_nonzero_root;
    Alcotest.test_case "collectives: reduce combines" `Quick test_reduce_combines;
    Alcotest.test_case "collectives: allgather" `Quick test_allgather_all_to_all;
    Alcotest.test_case "collectives: single proc" `Quick
      test_collectives_single_proc_trivial;
    Alcotest.test_case "collectives: tag budget" `Quick test_tags_used;
    QCheck_alcotest.to_alcotest prop_collectives_never_deadlock;
  ]

(* Tests for the kernels library: dense numerics and the paper's MDG
   builders. *)

module G = Mdg.Graph
module Mat = Numeric.Mat
module D = Kernels.Dense

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ------------------------------------------------------------------ *)
(* Dense                                                               *)
(* ------------------------------------------------------------------ *)

let test_quadrants_roundtrip () =
  let m = D.random_matrix ~seed:3 8 in
  let a11, a12, a21, a22 = D.quadrants m in
  Alcotest.(check bool) "assemble inverts quadrants" true
    (Mat.approx_equal (D.assemble a11 a12 a21 a22) m)

let test_strassen_one_level_matches_naive () =
  List.iter
    (fun n ->
      let a = D.random_matrix ~seed:n n in
      let b = D.random_matrix ~seed:(n + 100) n in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d" n)
        true
        (Mat.approx_equal ~eps:1e-10
           (D.strassen_one_level a b)
           (Mat.matmul a b)))
    [ 2; 4; 16; 32 ]

let test_strassen_recursive_matches_naive () =
  let n = 64 in
  let a = D.random_matrix ~seed:1 n in
  let b = D.random_matrix ~seed:2 n in
  Alcotest.(check bool) "full recursion" true
    (Mat.approx_equal ~eps:1e-9 (D.strassen ~threshold:8 a b) (Mat.matmul a b))

let test_strassen_rejects_bad_inputs () =
  let a = Mat.create 3 3 1.0 in
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Dense.strassen: size not a power of two") (fun () ->
      ignore (D.strassen a a));
  let b = Mat.create 2 3 1.0 in
  Alcotest.check_raises "not square"
    (Invalid_argument "Dense.strassen: matrix not square") (fun () ->
      ignore (D.strassen b b))

let test_complex_matmul_matches_direct () =
  let n = 8 in
  let a = { D.re = D.random_matrix ~seed:10 n; im = D.random_matrix ~seed:11 n } in
  let b = { D.re = D.random_matrix ~seed:12 n; im = D.random_matrix ~seed:13 n } in
  let via = D.complex_matmul a b in
  let direct = D.complex_matmul_direct a b in
  Alcotest.(check bool) "re" true (Mat.approx_equal ~eps:1e-10 via.re direct.re);
  Alcotest.(check bool) "im" true (Mat.approx_equal ~eps:1e-10 via.im direct.im)

let test_complex_identity () =
  (* (I + 0i)(B_re + iB_im) = B. *)
  let n = 4 in
  let i = { D.re = Mat.identity n; im = Mat.create n n 0.0 } in
  let b = { D.re = D.random_matrix ~seed:5 n; im = D.random_matrix ~seed:6 n } in
  let c = D.complex_matmul i b in
  Alcotest.(check bool) "re" true (Mat.approx_equal c.re b.re);
  Alcotest.(check bool) "im" true (Mat.approx_equal c.im b.im)

let test_random_matrix_deterministic () =
  let a = D.random_matrix ~seed:42 6 and b = D.random_matrix ~seed:42 6 in
  Alcotest.(check bool) "same seed same matrix" true (Mat.approx_equal a b);
  let c = D.random_matrix ~seed:43 6 in
  Alcotest.(check bool) "different seed different matrix" false
    (Mat.approx_equal a c);
  (* Entries in [-1, 1]. *)
  let ok = ref true in
  for i = 0 to 5 do
    for j = 0 to 5 do
      let v = Mat.get a i j in
      if v < -1.0 || v > 1.0 then ok := false
    done
  done;
  Alcotest.(check bool) "range" true !ok

let prop_strassen_random_sizes =
  QCheck.Test.make ~name:"one-level Strassen == naive on random seeds" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 1 4))
    (fun (seed, log_n) ->
      let n = 2 lsl log_n in
      let a = D.random_matrix ~seed n in
      let b = D.random_matrix ~seed:(seed + 1) n in
      Mat.approx_equal ~eps:1e-9 (D.strassen_one_level a b) (Mat.matmul a b))

(* ------------------------------------------------------------------ *)
(* Example MDG (Figure 1)                                              *)
(* ------------------------------------------------------------------ *)

let test_example_reproduces_paper_numbers () =
  (* The numbers quoted in the paper's Section 1.2. *)
  check_close ~eps:0.05 "naive 15.6 s" 15.6
    (Kernels.Example_mdg.naive_finish_time ~procs:4);
  check_close ~eps:0.05 "mixed 14.3 s" 14.3
    (Kernels.Example_mdg.mixed_finish_time ~procs:4)

let test_example_structure () =
  let g = Kernels.Example_mdg.graph () in
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  Alcotest.(check int) "4 nodes (3 + STOP)" 4 (G.num_nodes g);
  Alcotest.(check int) "N1 feeds two" 2
    (List.length (G.succs g Kernels.Example_mdg.n1))

let test_example_mixed_beats_naive () =
  List.iter
    (fun procs ->
      Alcotest.(check bool)
        (Printf.sprintf "p=%d" procs)
        true
        (Kernels.Example_mdg.mixed_finish_time ~procs
        < Kernels.Example_mdg.naive_finish_time ~procs))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Complex MM MDG (Figure 6 left)                                      *)
(* ------------------------------------------------------------------ *)

let test_complex_mm_structure () =
  let g, ids = Kernels.Complex_mm.graph ~n:64 () in
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  (* 10 real nodes + START + STOP. *)
  Alcotest.(check int) "12 nodes" 12 (G.num_nodes g);
  (* The four multiplies are mutually independent. *)
  let r = Mdg.Analysis.reachable g ids.mul_ac in
  Alcotest.(check bool) "muls independent" false r.(ids.mul_bd);
  (* Each multiply consumes two operands. *)
  List.iter
    (fun m -> Alcotest.(check int) "2 operands" 2 (List.length (G.preds g m)))
    [ ids.mul_ac; ids.mul_bd; ids.mul_ad; ids.mul_bc ];
  (* Both adds consume two products. *)
  List.iter
    (fun a -> Alcotest.(check int) "2 products" 2 (List.length (G.preds g a)))
    [ ids.add_re; ids.add_im ];
  (* All transfers 1D with 8*64*64 bytes (paper: only 1D transfers). *)
  List.iter
    (fun (e : G.edge) ->
      if (G.node g e.src).kernel <> G.Dummy && (G.node g e.dst).kernel <> G.Dummy
      then begin
        Alcotest.(check bool) "1D" true (e.kind = G.Oned);
        check_close "bytes" 32768.0 e.bytes
      end)
    (G.edges g)

let test_complex_mm_kernels () =
  Alcotest.(check int) "3 kernels" 3
    (List.length (Kernels.Complex_mm.kernels ~n:64));
  Alcotest.(check bool) "numerics" true
    (Kernels.Complex_mm.verify_numerics ~n:8 ~seed:99)

(* ------------------------------------------------------------------ *)
(* Strassen MDG (Figure 6 right)                                       *)
(* ------------------------------------------------------------------ *)

let test_strassen_mdg_structure () =
  let g, ids = Kernels.Strassen_mdg.graph ~n:128 () in
  Alcotest.(check bool) "normalised" true (G.is_normalised g);
  (* 2 + 10 + 7 + 8 = 27 real nodes + START + STOP. *)
  Alcotest.(check int) "29 nodes" 29 (G.num_nodes g);
  Alcotest.(check int) "10 pre-adds" 10 (Array.length ids.pre_adds);
  Alcotest.(check int) "7 muls" 7 (Array.length ids.muls);
  Alcotest.(check int) "8 post-adds" 8 (Array.length ids.post_adds);
  (* Multiplies are 64x64 and mutually independent. *)
  Array.iter
    (fun m ->
      Alcotest.(check bool) "mul kernel" true
        ((G.node g m).kernel = G.Matrix_multiply 64))
    ids.muls;
  let r = Mdg.Analysis.reachable g ids.muls.(0) in
  Array.iteri
    (fun k m ->
      if k > 0 then Alcotest.(check bool) "independent" false r.(m))
    ids.muls;
  (* Each multiply has exactly two operand edges. *)
  Array.iter
    (fun m -> Alcotest.(check int) "2 operands" 2 (List.length (G.preds g m)))
    ids.muls

let test_strassen_mdg_numerics () =
  Alcotest.(check bool) "numerics" true
    (Kernels.Strassen_mdg.verify_numerics ~n:16 ~seed:3)

let test_strassen_mdg_rejects_odd () =
  Alcotest.check_raises "odd"
    (Invalid_argument "Strassen_mdg.graph: n must be even and >= 2") (fun () ->
      ignore (Kernels.Strassen_mdg.graph ~n:3 ()))

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_chain () =
  let g = Kernels.Workloads.chain ~length:5 ~tau:1.0 ~alpha:0.1 ~bytes:100.0 in
  Alcotest.(check int) "depth = length" 5 (Mdg.Analysis.depth g);
  Alcotest.(check int) "width 1" 1 (Mdg.Analysis.max_width g)

let test_workload_fork_join () =
  let g = Kernels.Workloads.fork_join ~branches:6 ~tau:1.0 ~alpha:0.1 ~bytes:10.0 in
  Alcotest.(check int) "width = branches" 6 (Mdg.Analysis.max_width g);
  Alcotest.(check int) "depth 3" 3 (Mdg.Analysis.depth g)

let test_workload_independent () =
  let g = Kernels.Workloads.fully_independent ~count:7 ~tau:1.0 ~alpha:0.0 in
  Alcotest.(check int) "9 nodes with dummies" 9 (G.num_nodes g);
  Alcotest.(check int) "width 7" 7 (Mdg.Analysis.max_width g)

let test_workload_deterministic () =
  let shape = Kernels.Workloads.default_shape in
  let g1 = Kernels.Workloads.random_layered ~seed:11 shape in
  let g2 = Kernels.Workloads.random_layered ~seed:11 shape in
  Alcotest.(check int) "same node count" (G.num_nodes g1) (G.num_nodes g2);
  Alcotest.(check int) "same edge count"
    (List.length (G.edges g1))
    (List.length (G.edges g2))

let suite =
  [
    Alcotest.test_case "quadrants/assemble roundtrip" `Quick
      test_quadrants_roundtrip;
    Alcotest.test_case "one-level Strassen == naive" `Quick
      test_strassen_one_level_matches_naive;
    Alcotest.test_case "recursive Strassen == naive" `Quick
      test_strassen_recursive_matches_naive;
    Alcotest.test_case "Strassen input validation" `Quick
      test_strassen_rejects_bad_inputs;
    Alcotest.test_case "complex matmul == direct" `Quick
      test_complex_matmul_matches_direct;
    Alcotest.test_case "complex identity" `Quick test_complex_identity;
    Alcotest.test_case "random matrix deterministic" `Quick
      test_random_matrix_deterministic;
    QCheck_alcotest.to_alcotest prop_strassen_random_sizes;
    Alcotest.test_case "example: paper's 15.6/14.3 numbers" `Quick
      test_example_reproduces_paper_numbers;
    Alcotest.test_case "example: structure" `Quick test_example_structure;
    Alcotest.test_case "example: mixed beats naive" `Quick
      test_example_mixed_beats_naive;
    Alcotest.test_case "complex-mm MDG structure" `Quick test_complex_mm_structure;
    Alcotest.test_case "complex-mm kernels + numerics" `Quick
      test_complex_mm_kernels;
    Alcotest.test_case "strassen MDG structure" `Quick test_strassen_mdg_structure;
    Alcotest.test_case "strassen MDG numerics" `Quick test_strassen_mdg_numerics;
    Alcotest.test_case "strassen MDG rejects odd sizes" `Quick
      test_strassen_mdg_rejects_odd;
    Alcotest.test_case "workload: chain" `Quick test_workload_chain;
    Alcotest.test_case "workload: fork/join" `Quick test_workload_fork_join;
    Alcotest.test_case "workload: independent" `Quick test_workload_independent;
    Alcotest.test_case "workload: deterministic" `Quick test_workload_deterministic;
  ]

bench/experiments.ml: Convex Core Costmodel Format Kernels Lazy List Machine Mdg Numeric Printf String Sys

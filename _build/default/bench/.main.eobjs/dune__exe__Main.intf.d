bench/main.mli:

bench/main.ml: Analyze Array Bechamel Benchmark Convex Core Experiments Hashtbl Instance Kernels List Machine Mdg Measure Numeric Printf Staged String Sys Test Time Toolkit
